/**
 * @file
 * bh_bench — the unified benchmark runner.
 *
 *   bh_bench --list                 # what can run
 *   bh_bench fig06 fig07            # named figures
 *   bh_bench all --jobs=8           # the full set, 8 worker threads
 *   bh_bench all --json=out.json    # export every experiment point
 *
 * All figures share one memoizing ExperimentPool: grids prefetch in
 * parallel (--jobs) and points shared between figures simulate once. The
 * JSON export is sorted by canonical experiment key, so its bytes are
 * identical no matter how many jobs produced it.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "common/env.h"

namespace {

void
usage()
{
    std::printf(
        "usage: bh_bench [options] <figure>... | all\n"
        "       bh_bench --list\n\n"
        "options:\n"
        "  --list        list registered figures and exit\n"
        "  --jobs=N      worker threads for experiment grids "
        "(default: hardware)\n"
        "  --json=PATH   export every simulated point as JSON\n\n"
        "scale knobs (environment): BH_INSTS, BH_MIXES, BH_FULL\n");
}

void
listFigures()
{
    std::printf("%-12s %-52s %s\n", "name", "title", "reproduces");
    for (const bh::bench::Figure &figure : bh::bench::figures())
        std::printf("%-12s %-52s %s\n", figure.name.c_str(),
                    figure.title.c_str(), figure.paperRef.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bh;
    using Clock = std::chrono::steady_clock;

    // Validate the scale knobs up front: a negative or malformed BH_INSTS
    // would otherwise wrap to a huge unsigned and hang the whole run.
    if (const char *insts = std::getenv("BH_INSTS");
        insts != nullptr && *insts != '\0') {
        std::uint64_t parsed = 0;
        if (!parsePositiveU64(insts, &parsed)) {
            std::fprintf(stderr,
                         "error: BH_INSTS=%s is not a positive integer\n",
                         insts);
            return 2;
        }
    }

    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::string json_path;
    bool run_all = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            listFigures();
            return 0;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            std::uint64_t parsed = 0;
            if (!parsePositiveU64(arg.c_str() + 7, &parsed) ||
                parsed > 1024) {
                std::fprintf(stderr,
                             "error: --jobs wants a positive integer "
                             "(1..1024), got \"%s\"\n",
                             arg.c_str() + 7);
                return 2;
            }
            jobs = static_cast<unsigned>(parsed);
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "all") {
            run_all = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n\n", arg.c_str());
            usage();
            return 2;
        } else {
            names.push_back(arg);
        }
    }

    // Validate explicit names even when "all" is also given, so typos
    // never silently vanish into a full-grid run.
    std::vector<bench::Figure> named;
    for (const std::string &name : names) {
        const bench::Figure *figure = bench::findFigure(name);
        if (!figure) {
            std::fprintf(stderr, "unknown figure: %s (try --list)\n",
                         name.c_str());
            return 2;
        }
        named.push_back(*figure);
    }

    std::vector<bench::Figure> selected;
    if (run_all) {
        if (!named.empty())
            std::fprintf(stderr, "note: \"all\" includes every figure; "
                                 "ignoring the explicit name(s)\n");
        selected = bench::figures();
    } else {
        selected = std::move(named);
    }
    if (selected.empty()) {
        usage();
        return 2;
    }

    ExperimentPool pool(jobs);
    bench::Context ctx{&pool, jobs};

    auto total_start = Clock::now();
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const bench::Figure &figure = selected[i];
        if (i)
            std::printf("\n");
        benchutil::header(figure.title, figure.paperRef);
        auto start = Clock::now();
        figure.fn(ctx);
        double secs =
            std::chrono::duration<double>(Clock::now() - start).count();
        std::printf("\n[%s: %.2f s, pool: %zu points]\n",
                    figure.name.c_str(), secs, pool.size());
    }
    double total_secs =
        std::chrono::duration<double>(Clock::now() - total_start).count();
    std::printf("\n==== done: %zu figure(s), %zu experiment point(s), "
                "%.2f s, jobs=%u ====\n",
                selected.size(), pool.size(), total_secs, jobs);

    if (!json_path.empty()) {
        JsonValue doc = JsonValue::object();
        doc.set("experiments", pool.toJson());
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::string text = doc.dump(2);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
