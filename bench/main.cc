/**
 * @file
 * bh_bench — the unified benchmark runner.
 *
 *   bh_bench --list                 # what can run
 *   bh_bench fig06 fig07            # named figures
 *   bh_bench all --jobs=8           # the full set, 8 worker threads
 *   bh_bench all --json=out.json    # export every experiment point
 *   bh_bench all --store=results    # persist points; warm runs simulate 0
 *   bh_bench all --store=s1 --shard=1/2   # compute this machine's half
 *
 * All figures declare their grids as SweepSpecs and share one
 * content-addressed ResultStore: grids prefetch in parallel (--jobs),
 * points shared between figures simulate once, and with --store they
 * persist across processes — a fully warm run performs zero simulations
 * and re-exports byte-identical JSON. With --shard=i/N only the points
 * whose content address hashes to shard i are computed (rendering is
 * skipped: tables need the whole grid); shard stores merge by
 * concatenating their results.jsonl files. The JSON export is sorted by
 * canonical experiment key, so its bytes are identical no matter how many
 * jobs — or machines — produced it.
 */
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "common/env.h"
#include "sim/redteam.h"
#include "svc/coordinator.h"
#include "svc/worker.h"

namespace {

void
usage()
{
    std::printf(
        "usage: bh_bench [options] <figure>... | all\n"
        "       bh_bench --list\n\n"
        "options:\n"
        "  --list        list registered figures and exit\n"
        "  --jobs=N      worker threads for experiment grids "
        "(default: hardware)\n"
        "  --json=PATH   export every simulated point as JSON\n"
        "  --store=DIR   persistent result store: reuse cached points,\n"
        "                append new ones (merge stores with cat)\n"
        "  --shard=I/N   compute only shard I of N (1-based, by content\n"
        "                address) and skip rendering; combine with "
        "--store\n"
        "  --checkpoint-every=N[c]\n"
        "                with --store: snapshot each running simulation\n"
        "                every N retired instructions (or N cycles with\n"
        "                the 'c' suffix) into <store>/snapshots; a killed\n"
        "                run restarted with the same flags resumes from\n"
        "                its snapshots bit-identically\n"
        "  --sample=W/M/F\n"
        "                statistical interval sampling: one detailed\n"
        "                warm-up of W instructions, then repeating\n"
        "                [fast-forward F][warm W][measure M] windows;\n"
        "                headline metrics become means across windows\n"
        "                with 95%% confidence intervals in the JSON.\n"
        "                Sampled points key separately from exact ones\n"
        "                in --store; oracle configs always run exact\n"
        "  --channels=N  DRAM channels (power of two; default 1). Each\n"
        "                channel gets its own memory controller and\n"
        "                mitigation state; addresses interleave across\n"
        "                channels\n"
        "  --ranks=N     DRAM ranks per channel (power of two; default "
        "2)\n"
        "  --redteam=SEED/ROUNDS/POP\n"
        "                red-team fuzzer: evolve adaptive attacker\n"
        "                strategies (pattern, pacing, observation\n"
        "                cadence, thread rotation) against PARA,\n"
        "                Graphene, and Hydra for ROUNDS generations of\n"
        "                POP strategies from the given seed; probes\n"
        "                persist in --store (required) under |rt= keys,\n"
        "                so a re-run simulates 0 and reports identical\n"
        "                results. Takes no figures; exact runs only\n"
        "  --serve=PORT  coordinator mode: expand the selected figures'\n"
        "                grids into work units and lease them to --worker\n"
        "                processes over TCP; requires --store (every\n"
        "                result ingests into it). The same port answers\n"
        "                HTTP GET /progress and /metrics. Rendering is\n"
        "                skipped, like --shard\n"
        "  --lease-timeout=SECS\n"
        "                serve mode: lease lifetime between worker\n"
        "                heartbeats (default 30); a worker silent this\n"
        "                long forfeits its unit, which is re-leased\n"
        "  --linger=SECS serve mode: keep answering HTTP this long after\n"
        "                the last unit completes (default 0)\n"
        "  --worker=HOST:PORT\n"
        "                worker mode: lease work units from a coordinator\n"
        "                and stream results back; --jobs sets the compute\n"
        "                threads. Takes no figures and no --store\n"
        "                (--checkpoint-every snapshots into\n"
        "                ./bh-worker-snapshots so re-leased units "
        "resume)\n\n"
        "scale knobs (environment): BH_INSTS, BH_MIXES, BH_FULL\n");
}

void
listFigures()
{
    std::printf("%-12s %-52s %s\n", "name", "title", "reproduces");
    for (const bh::bench::Figure &figure : bh::bench::figures())
        std::printf("%-12s %-52s %s%s\n", figure.name.c_str(),
                    figure.title.c_str(), figure.paperRef.c_str(),
                    figure.inAll ? "" : " [study: not part of \"all\"]");
}

/**
 * Parse a 1-based "I/N" shard spec. Rejects non-numeric parts, zero on
 * either side (parsePositiveU64 is strict), and I > N.
 */
bool
parseShardSpec(const char *text, unsigned *index, unsigned *count)
{
    const char *slash = std::strchr(text, '/');
    if (slash == nullptr || slash == text || slash[1] == '\0')
        return false;
    std::string index_text(text, slash);
    std::uint64_t i = 0, n = 0;
    if (!bh::parsePositiveU64(index_text.c_str(), &i) ||
        !bh::parsePositiveU64(slash + 1, &n))
        return false;
    if (i > n || n > 4096)
        return false;
    *index = static_cast<unsigned>(i);
    *count = static_cast<unsigned>(n);
    return true;
}

/**
 * Parse a "W/M/F" sampling spec (all three positive instruction counts).
 * Rejects missing parts, zeros, and non-numeric text via the same strict
 * parser the shard spec uses.
 */
bool
parseSampleSpec(const char *text, bh::SamplingSpec *spec)
{
    const char *s1 = std::strchr(text, '/');
    if (s1 == nullptr || s1 == text)
        return false;
    const char *s2 = std::strchr(s1 + 1, '/');
    if (s2 == nullptr || s2 == s1 + 1 || s2[1] == '\0')
        return false;
    std::string warm(text, s1);
    std::string meas(s1 + 1, s2);
    std::uint64_t w = 0, m = 0, f = 0;
    if (!bh::parsePositiveU64(warm.c_str(), &w) ||
        !bh::parsePositiveU64(meas.c_str(), &m) ||
        !bh::parsePositiveU64(s2 + 1, &f))
        return false;
    spec->warmup = w;
    spec->measure = m;
    spec->fastForward = f;
    return true;
}

/** Parse a TCP port (1..65535). */
bool
parsePort(const char *text, std::uint16_t *out)
{
    std::uint64_t parsed = 0;
    if (!bh::parsePositiveU64(text, &parsed) || parsed > 65535)
        return false;
    *out = static_cast<std::uint16_t>(parsed);
    return true;
}

/** Parse a worker's "HOST:PORT" coordinator address. */
bool
parseHostPort(const char *text, std::string *host, std::uint16_t *port)
{
    const char *colon = std::strrchr(text, ':');
    if (colon == nullptr || colon == text || colon[1] == '\0')
        return false;
    if (!parsePort(colon + 1, port))
        return false;
    host->assign(text, colon);
    return true;
}

/** This machine's name + pid, the worker label /metrics reports. */
std::string
workerName()
{
    char host[256] = "worker";
    ::gethostname(host, sizeof(host) - 1);
    host[sizeof(host) - 1] = '\0';
    return std::string(host) + ":" + std::to_string(::getpid());
}

/**
 * Parse a DRAM organization count: strictly numeric, positive, a power
 * of two (the address map slices bits, so anything else cannot be
 * encoded), and within a sane bound.
 */
bool
parseOrgCount(const char *text, std::uint64_t limit, unsigned *out)
{
    std::uint64_t parsed = 0;
    if (!bh::parsePositiveU64(text, &parsed) || parsed > limit ||
        (parsed & (parsed - 1)) != 0)
        return false;
    *out = static_cast<unsigned>(parsed);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bh;
    using Clock = std::chrono::steady_clock;

    // Validate the scale knobs up front: a negative or malformed BH_INSTS
    // would otherwise wrap to a huge unsigned and hang the whole run.
    if (const char *insts = std::getenv("BH_INSTS");
        insts != nullptr && *insts != '\0') {
        std::uint64_t parsed = 0;
        if (!parsePositiveU64(insts, &parsed)) {
            std::fprintf(stderr,
                         "error: BH_INSTS=%s is not a positive integer\n",
                         insts);
            return 2;
        }
    }

    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::string json_path;
    std::string store_dir;
    std::uint64_t checkpoint_insts = 0;
    std::uint64_t checkpoint_cycles = 0;
    SamplingSpec sample;
    ChannelSpec channel_spec;
    unsigned shard_index = 0, shard_count = 0;
    std::uint16_t serve_port = 0;
    std::string worker_host;
    std::uint16_t worker_port = 0;
    std::uint64_t lease_timeout_s = 30;
    std::uint64_t linger_s = 0;
    bool lease_timeout_given = false, linger_given = false;
    RedteamSpec redteam_spec;
    bool redteam_mode = false;
    bool run_all = false;
    std::vector<std::string> names;

    // Flags taking a value accept both --flag=VALUE and --flag VALUE.
    auto flag_value = [&](const std::string &arg, const char *flag,
                          int *i, const char **out) {
        std::size_t len = std::strlen(flag);
        if (arg.compare(0, len, flag) != 0)
            return false;
        if (arg.size() > len && arg[len] == '=') {
            *out = argv[*i] + len + 1;
            return true;
        }
        if (arg.size() == len && *i + 1 < argc) {
            *out = argv[++*i];
            return true;
        }
        return false;
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const char *value = nullptr;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            listFigures();
            return 0;
        } else if (flag_value(arg, "--jobs", &i, &value)) {
            std::uint64_t parsed = 0;
            if (!parsePositiveU64(value, &parsed) || parsed > 1024) {
                std::fprintf(stderr,
                             "error: --jobs wants a positive integer "
                             "(1..1024), got \"%s\"\n",
                             value);
                return 2;
            }
            jobs = static_cast<unsigned>(parsed);
        } else if (flag_value(arg, "--json", &i, &value)) {
            json_path = value;
        } else if (flag_value(arg, "--store", &i, &value)) {
            store_dir = value;
            if (store_dir.empty()) {
                std::fprintf(stderr,
                             "error: --store wants a directory path\n");
                return 2;
            }
        } else if (flag_value(arg, "--checkpoint-every", &i, &value)) {
            std::string text = value;
            bool in_cycles = false;
            if (!text.empty() &&
                (text.back() == 'c' || text.back() == 'C')) {
                in_cycles = true;
                text.pop_back();
            }
            std::uint64_t parsed = 0;
            if (!parsePositiveU64(text.c_str(), &parsed)) {
                std::fprintf(stderr,
                             "error: --checkpoint-every wants a positive "
                             "integer instruction count (or cycles with "
                             "a 'c' suffix), got \"%s\"\n",
                             value);
                return 2;
            }
            if (in_cycles)
                checkpoint_cycles = parsed;
            else
                checkpoint_insts = parsed;
        } else if (flag_value(arg, "--sample", &i, &value)) {
            if (!parseSampleSpec(value, &sample)) {
                std::fprintf(stderr,
                             "error: --sample wants W/M/F with three "
                             "positive instruction counts (e.g. "
                             "--sample=20000/10000/100000), got \"%s\"\n",
                             value);
                return 2;
            }
        } else if (flag_value(arg, "--channels", &i, &value)) {
            if (!parseOrgCount(value, 64, &channel_spec.channels)) {
                std::fprintf(stderr,
                             "error: --channels wants a power-of-two "
                             "channel count (1..64), got \"%s\"\n",
                             value);
                return 2;
            }
        } else if (flag_value(arg, "--ranks", &i, &value)) {
            if (!parseOrgCount(value, 16, &channel_spec.ranks)) {
                std::fprintf(stderr,
                             "error: --ranks wants a power-of-two rank "
                             "count (1..16), got \"%s\"\n",
                             value);
                return 2;
            }
        } else if (flag_value(arg, "--redteam", &i, &value)) {
            if (!parseRedteamSpec(value, &redteam_spec)) {
                std::fprintf(stderr,
                             "error: --redteam wants SEED/ROUNDS/POP "
                             "with positive integers (rounds <= 16, "
                             "pop <= 64; e.g. --redteam=1/2/4), got "
                             "\"%s\"\n",
                             value);
                return 2;
            }
            redteam_mode = true;
        } else if (flag_value(arg, "--serve", &i, &value)) {
            if (!parsePort(value, &serve_port)) {
                std::fprintf(stderr,
                             "error: --serve wants a TCP port (1..65535), "
                             "got \"%s\"\n",
                             value);
                return 2;
            }
        } else if (flag_value(arg, "--worker", &i, &value)) {
            if (!parseHostPort(value, &worker_host, &worker_port)) {
                std::fprintf(stderr,
                             "error: --worker wants HOST:PORT (e.g. "
                             "--worker=10.0.0.1:18573), got \"%s\"\n",
                             value);
                return 2;
            }
        } else if (flag_value(arg, "--lease-timeout", &i, &value)) {
            if (!parsePositiveU64(value, &lease_timeout_s) ||
                lease_timeout_s > 86400) {
                std::fprintf(stderr,
                             "error: --lease-timeout wants a positive "
                             "number of seconds (1..86400), got \"%s\"\n",
                             value);
                return 2;
            }
            lease_timeout_given = true;
        } else if (flag_value(arg, "--linger", &i, &value)) {
            if (!parsePositiveU64(value, &linger_s) || linger_s > 86400) {
                std::fprintf(stderr,
                             "error: --linger wants a positive number of "
                             "seconds (1..86400), got \"%s\"\n",
                             value);
                return 2;
            }
            linger_given = true;
        } else if (flag_value(arg, "--shard", &i, &value)) {
            if (!parseShardSpec(value, &shard_index, &shard_count)) {
                std::fprintf(stderr,
                             "error: --shard wants I/N with 1 <= I <= N "
                             "<= 4096 (e.g. --shard=1/2), got \"%s\"\n",
                             value);
                return 2;
            }
        } else if (arg == "all") {
            run_all = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n\n", arg.c_str());
            usage();
            return 2;
        } else {
            names.push_back(arg);
        }
    }

    // Mode sanity: --serve and --worker are the two halves of the sweep
    // service, and each contradicts flags the other half owns. Reject
    // the contradictions loudly instead of guessing.
    const bool serve_mode = serve_port != 0;
    const bool worker_mode = !worker_host.empty();
    if (serve_mode && worker_mode) {
        std::fprintf(stderr,
                     "error: --serve and --worker are different "
                     "processes; pick one (try --help)\n");
        return 2;
    }
    if (worker_mode &&
        (!store_dir.empty() || shard_count != 0 || !json_path.empty() ||
         sample.enabled() || channel_spec.channels != 0 ||
         channel_spec.ranks != 0 || run_all || !names.empty())) {
        std::fprintf(stderr,
                     "error: a worker takes its work (and every "
                     "simulation parameter) from the coordinator's "
                     "leases; drop --store/--shard/--json/--sample/"
                     "--channels/--ranks and figure names (try "
                     "--help)\n");
        return 2;
    }
    if ((lease_timeout_given || linger_given) && !serve_mode) {
        std::fprintf(stderr,
                     "error: --lease-timeout and --linger only apply to "
                     "--serve (try --help)\n");
        return 2;
    }
    if (serve_mode && store_dir.empty()) {
        std::fprintf(stderr,
                     "error: --serve requires --store: the coordinator "
                     "is the single writer every worker's results "
                     "ingest into (try --help)\n");
        return 2;
    }
    if (serve_mode && shard_count != 0) {
        std::fprintf(stderr,
                     "error: --serve replaces --shard: the coordinator "
                     "leases the whole grid, unit by unit (try "
                     "--help)\n");
        return 2;
    }
    if (redteam_mode &&
        (serve_mode || worker_mode || shard_count != 0 ||
         sample.enabled() || run_all || !names.empty())) {
        std::fprintf(stderr,
                     "error: --redteam is its own mode: it drives the "
                     "search grid itself (exact runs only); drop "
                     "--serve/--worker/--shard/--sample and figure "
                     "names (try --help)\n");
        return 2;
    }
    if (redteam_mode && store_dir.empty()) {
        std::fprintf(stderr,
                     "error: --redteam requires --store: probes persist "
                     "under |rt= keys so re-runs simulate 0 (try "
                     "--help)\n");
        return 2;
    }

    if (worker_mode) {
        if (checkpoint_insts || checkpoint_cycles) {
            // Workers have no --store; snapshots live in a local
            // directory so a re-leased unit resumes instead of
            // restarting (same bit-exact resume as a local run).
            CheckpointSpec spec;
            spec.dir = "bh-worker-snapshots";
            spec.everyInsts = checkpoint_insts;
            spec.everyCycles = checkpoint_cycles;
            std::error_code ec;
            std::filesystem::create_directories(spec.dir, ec);
            if (ec) {
                std::fprintf(stderr,
                             "error: cannot create snapshot directory "
                             "%s: %s\n",
                             spec.dir.c_str(), ec.message().c_str());
                return 2;
            }
            setCheckpointSpec(spec);
        }
        svc::WorkerOptions wopts;
        wopts.host = worker_host;
        wopts.port = worker_port;
        wopts.jobs = jobs;
        wopts.name = workerName();
        svc::SweepWorker worker(wopts);
        std::printf("==== worker %s: coordinator %s:%u, jobs=%u ====\n",
                    wopts.name.c_str(), worker_host.c_str(), worker_port,
                    jobs);
        std::string error;
        bool ok = worker.run(&error);
        std::printf("worker: %zu unit(s) simulated\n",
                    worker.completedUnits());
        if (!ok) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        return 0;
    }

    // Validate explicit names even when "all" is also given, so typos
    // never silently vanish into a full-grid run.
    std::vector<bench::Figure> named;
    for (const std::string &name : names) {
        const bench::Figure *figure = bench::findFigure(name);
        if (!figure) {
            std::fprintf(stderr, "unknown figure: %s (try --list)\n",
                         name.c_str());
            return 2;
        }
        named.push_back(*figure);
    }

    std::vector<bench::Figure> selected;
    if (run_all) {
        if (!named.empty())
            std::fprintf(stderr, "note: \"all\" includes every figure; "
                                 "ignoring the explicit name(s)\n");
        // Scaling studies (inAll = false) run only by explicit name, so
        // the canonical full-set export keeps its bytes.
        for (const bench::Figure &figure : bench::figures())
            if (figure.inAll)
                selected.push_back(figure);
    } else {
        selected = std::move(named);
    }
    if (selected.empty() && !redteam_mode) {
        usage();
        return 2;
    }

    ResultStore store(jobs);
    if (!store_dir.empty()) {
        std::string error;
        if (!store.open(store_dir, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 2;
        }
    }
    if (checkpoint_insts || checkpoint_cycles) {
        // Snapshots ride the store directory: resuming needs the same
        // records the interrupted run already streamed out.
        if (store_dir.empty()) {
            std::fprintf(stderr,
                         "error: --checkpoint-every requires --store "
                         "(snapshots live in <store>/snapshots)\n");
            return 2;
        }
        CheckpointSpec spec;
        spec.dir = store_dir + "/snapshots";
        spec.everyInsts = checkpoint_insts;
        spec.everyCycles = checkpoint_cycles;
        std::error_code ec;
        std::filesystem::create_directories(spec.dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "error: cannot create snapshot directory %s: "
                         "%s\n",
                         spec.dir.c_str(), ec.message().c_str());
            return 2;
        }
        setCheckpointSpec(spec);
    }
    if (sample.enabled()) {
        // Fold the spec into every experiment point (oracle configs
        // ignore it and run exact) and let each sampled point fan its
        // windows across the same worker budget the grid uses.
        setSamplingSpec(sample);
        setSamplingJobs(jobs);
    }
    if (channel_spec.channels || channel_spec.ranks) {
        // Fold the organization into every experiment point; solo-IPC
        // baselines stay single-channel so weighted speedup keeps the
        // same denominator across the channel-count axis.
        setChannelSpec(channel_spec);
    }
    if (shard_count) {
        store.setShard(shard_index, shard_count);
        if (store_dir.empty() && json_path.empty())
            std::fprintf(stderr,
                         "note: --shard without --store or --json "
                         "discards the computed points\n");
    }
    bench::Context ctx{&store, jobs};

    auto total_start = Clock::now();
    if (redteam_mode) {
        std::printf("==== red-team fuzzer: seed=%llu rounds=%u pop=%u "
                    "====\n",
                    static_cast<unsigned long long>(redteam_spec.seed),
                    redteam_spec.rounds, redteam_spec.population);
        RedteamReport report = runRedteamSearch(redteam_spec, &store);
        std::printf("%-12s %12s %12s  %s\n", "mechanism", "fixed",
                    "adaptive", "best adaptive strategy");
        for (const RedteamMechanismOutcome &o : report.mechanisms)
            std::printf("%-12s %12.6g %12.6g  %s%s\n",
                        mitigationName(o.mechanism), o.bestFixedFitness,
                        o.bestAdaptiveFitness,
                        o.bestAdaptiveStrategy.c_str(),
                        o.improved ? "  [evades]" : "");
        std::printf("fitness: preventive actions per attacker ACT "
                    "(lower = more evasive)\n");
        std::printf("probes=%zu improved_any=%d\n", report.probes,
                    report.improvedAny ? 1 : 0);
    } else if (serve_mode) {
        // Coordinator mode: union the selected figures' sweeps (the same
        // grid --shard unions), lease the units to workers, and ingest
        // their results. Rendering is skipped — render from the warm
        // store afterwards.
        std::vector<ExperimentConfig> grid;
        for (const bench::Figure &figure : selected) {
            if (!figure.sweep)
                continue;
            std::vector<ExperimentConfig> points =
                figure.sweep().expand();
            grid.insert(grid.end(), points.begin(), points.end());
        }
        svc::CoordinatorOptions copts;
        copts.port = serve_port;
        copts.leaseTimeoutMs = lease_timeout_s * 1000;
        copts.lingerMs = linger_s * 1000;
        svc::SweepCoordinator coordinator(copts, &store, grid);
        std::string error;
        if (!coordinator.start(&error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        svc::CoordinatorMetrics m = coordinator.metrics();
        std::printf("==== serving %zu work unit(s) (%zu warm) across "
                    "%zu figure(s) on port %u ====\n",
                    m.unitsTotal, m.unitsWarm, selected.size(),
                    coordinator.port());
        std::printf("progress: http://localhost:%u/progress  metrics: "
                    "http://localhost:%u/metrics\n",
                    coordinator.port(), coordinator.port());
        if (!coordinator.serve(&error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        m = coordinator.metrics();
        std::printf("==== sweep complete: %zu unit(s) (%zu warm, %zu "
                    "ingested), %zu lease(s) expired ====\n",
                    m.unitsDone, m.unitsWarm, m.recordsIngested,
                    m.leasesExpired);
    } else if (shard_count) {
        // Shard mode: union every selected figure's declarative sweep,
        // compute this shard's points, skip rendering (tables need the
        // whole grid — render from a merged store instead).
        std::vector<ExperimentConfig> grid;
        for (const bench::Figure &figure : selected) {
            if (!figure.sweep)
                continue;
            std::vector<ExperimentConfig> points =
                figure.sweep().expand();
            grid.insert(grid.end(), points.begin(), points.end());
        }
        std::printf("==== shard %u/%u: %zu grid point(s) across %zu "
                    "figure(s) ====\n",
                    shard_index, shard_count, grid.size(),
                    selected.size());
        store.prefetch(grid);
    } else {
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const bench::Figure &figure = selected[i];
            if (i)
                std::printf("\n");
            benchutil::header(figure.title, figure.paperRef);
            auto start = Clock::now();
            if (figure.sweep)
                store.prefetch(figure.sweep().expand());
            figure.render(ctx);
            double secs =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            std::printf("\n[%s: %.2f s, store: %zu points]\n",
                        figure.name.c_str(), secs, store.size());
        }
    }
    double total_secs =
        std::chrono::duration<double>(Clock::now() - total_start).count();
    ResultStoreStats stats = store.stats();
    std::printf("\n==== done: %zu figure(s), %zu experiment point(s), "
                "%.2f s, jobs=%u ====\n",
                selected.size(), store.size(), total_secs, jobs);
    std::printf("store: simulated=%zu solo_simulated=%zu hits=%zu "
                "loaded=%zu shard_skipped=%zu ingested=%zu\n",
                stats.computed, stats.soloComputed, stats.hits,
                stats.loaded, stats.shardSkipped, stats.ingested);

    if (!json_path.empty()) {
        JsonValue doc = JsonValue::object();
        doc.set("experiments", store.toJson());
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::string text = doc.dump(2);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
