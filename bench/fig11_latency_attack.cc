/**
 * @file
 * Fig 11: memory latency percentiles of benign applications at N_RH = 64
 * with an attacker present: no defense vs mechanism vs mechanism+BH.
 * Expected shape: +BH lowers latency at every percentile, sometimes below
 * the no-defense baseline; AQUA's scale dwarfs the others.
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig11",
                      "Fig 11: benign memory latency percentiles, N_RH=64, attacker",
                      "paper Fig 11 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    const unsigned n_rh = 64;
    MixSpec mix = makeMix("HHMA", 0);
    const double pcts[] = {50, 90, 99, 99.9};

    const ExperimentResult &nodef = baseline(ctx, mix);

    std::printf("%-12s %8s %8s %8s %8s   (latency ns at P50/P90/P99/P99.9,"
                " mix %s)\n",
                "config", "P50", "P90", "P99", "P99.9", mix.name.c_str());
    auto print_row = [&](const std::string &name, const Histogram &h) {
        std::printf("%-12s", name.c_str());
        for (double p : pcts)
            std::printf(" %8.0f", h.percentile(p));
        std::printf("\n");
    };
    print_row("NoDefense", nodef.raw.benignReadLatencyNs);

    for (MitigationType mech : pairedMitigations()) {
        const ExperimentResult &base = point(ctx, mix, mech, n_rh, false);
        const ExperimentResult &paired = point(ctx, mix, mech, n_rh, true);
        print_row(mitigationName(mech), base.raw.benignReadLatencyNs);
        print_row(std::string(mitigationName(mech)) + "+BH",
                  paired.raw.benignReadLatencyNs);
    }
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    return SweepSpec("fig11")
        .mix(makeMix("HHMA", 0))
        .withBaselines()
        .nRh(64)
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
