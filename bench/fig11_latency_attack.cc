/**
 * @file
 * Fig 11: memory latency percentiles of benign applications at N_RH = 64
 * with an attacker present: no defense vs mechanism vs mechanism+BH.
 * Expected shape: +BH lowers latency at every percentile, sometimes below
 * the no-defense baseline; AQUA's scale dwarfs the others.
 */
#include "bench/bench_util.h"

int
main()
{
    using namespace bh;
    using namespace bh::benchutil;

    header("Fig 11: benign memory latency percentiles, N_RH=64, attacker",
           "paper Fig 11 (§8.1)");

    const unsigned n_rh = 64;
    MixSpec mix = makeMix("HHMA", 0);
    const double pcts[] = {50, 90, 99, 99.9};

    ExperimentResult nodef = point(mix, MitigationType::kNone, 0, false);

    std::printf("%-12s %8s %8s %8s %8s   (latency ns at P50/P90/P99/P99.9,"
                " mix %s)\n",
                "config", "P50", "P90", "P99", "P99.9", mix.name.c_str());
    auto print_row = [&](const char *name, const Histogram &h) {
        std::printf("%-12s", name);
        for (double p : pcts)
            std::printf(" %8.0f", h.percentile(p));
        std::printf("\n");
    };
    print_row("NoDefense", nodef.raw.benignReadLatencyNs);

    for (MitigationType mech : pairedMitigations()) {
        ExperimentResult base = point(mix, mech, n_rh, false);
        ExperimentResult paired = point(mix, mech, n_rh, true);
        print_row(mitigationName(mech), base.raw.benignReadLatencyNs);
        std::string paired_name = std::string(mitigationName(mech)) + "+BH";
        print_row(paired_name.c_str(), paired.raw.benignReadLatencyNs);
    }
    return 0;
}
