/**
 * @file
 * Fig 9: unfairness (max benign slowdown) vs N_RH with an attacker
 * present, mechanism+BH normalized to a no-mitigation baseline.
 * Expected shape: BreakHammer keeps unfairness low (paper: -31.5%
 * average vs the unpaired mechanisms).
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig09",
                      "Fig 9: unfairness scaling vs N_RH, attacker present",
                      "paper Fig 9 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::vector<MixSpec> mixes = attackMixes();

    std::printf("%-8s", "NRH");
    for (MitigationType m : pairedMitigations()) {
        std::printf(" %9s", mitigationName(m));
        std::printf(" %9s", "+BH");
    }
    std::printf("\n");

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> base_norm, paired_norm;
            for (const MixSpec &mix : mixes) {
                double nodef = baseline(ctx, mix).maxSlowdown;
                base_norm.push_back(
                    point(ctx, mix, mech, n_rh, false).maxSlowdown /
                    nodef);
                paired_norm.push_back(
                    point(ctx, mix, mech, n_rh, true).maxSlowdown /
                    nodef);
            }
            std::printf(" %9.3f %9.3f", geomean(base_norm),
                        geomean(paired_norm));
        }
        std::printf("\n");
    }
    std::printf("\n(columns: mechanism without / with BreakHammer, "
                "normalized max slowdown vs no-mitigation)\n");
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig09")
        .mixes(attackMixes())
        .withBaselines()
        .nRhValues(nrhSweep())
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
