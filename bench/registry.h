/**
 * @file
 * Figure registry for the unified bench runner.
 *
 * Every figure driver registers a name, a title, the paper reference it
 * reproduces, an optional declarative SweepSpec describing its experiment
 * grid, and a render function. The bh_bench binary looks figures up by
 * name (`bh_bench fig06`), lists them (`--list`), or runs the whole set
 * (`bh_bench all`).
 *
 * The sweep/render split is what makes grids schedulable as data: the
 * runner prefetches a figure's sweep through the shared ResultStore
 * (parallel, deduped across figures, persisted with --store) before
 * calling render, and in --shard mode it unions every selected figure's
 * sweep, computes only this machine's shard, and skips rendering
 * entirely. Figures without experiment grids (analytic models, config
 * tables) register render only.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/result_store.h"
#include "sim/sweep.h"

namespace bh::bench {

/** Shared state handed to every figure render. */
struct Context
{
    /** Content-addressed result cache shared across figures. */
    ResultStore *store = nullptr;
    /** Worker threads for grid prefetches. */
    unsigned jobs = 1;
};

using SweepFn = SweepSpec (*)();
using RenderFn = void (*)(Context &);

/** One registered figure driver. */
struct Figure
{
    std::string name;     ///< CLI name, e.g. "fig06".
    std::string title;    ///< Human-readable headline.
    std::string paperRef; ///< e.g. "paper Fig 6 (§8.1)".
    SweepFn sweep = nullptr;  ///< Experiment grid; null = no experiments.
    RenderFn render = nullptr;
    /**
     * Part of "bh_bench all"? Paper figures are; beyond-paper scaling
     * studies register with inAll = false and run only when named
     * explicitly, so the canonical "all --json" export stays stable as
     * studies accumulate.
     */
    bool inAll = true;
};

/** Register @p figure (called by static Registrar initializers). */
void registerFigure(Figure figure);

/** All registered figures, sorted by name. */
std::vector<Figure> figures();

/** Look up a figure by CLI name; nullptr when unknown. */
const Figure *findFigure(const std::string &name);

/** Static-initialization helper behind the registration macros. */
struct Registrar
{
    Registrar(const char *name, const char *title, const char *paper_ref,
              SweepFn sweep, RenderFn render, bool in_all = true)
    {
        registerFigure(
            Figure{name, title, paper_ref, sweep, render, in_all});
    }
};

} // namespace bh::bench

/**
 * Define and register a figure without an experiment grid (analytic
 * models, config tables):
 *
 *   BH_BENCH_FIGURE("fig05", "Security bound", "paper Fig 5") { ... }
 */
#define BH_BENCH_FIGURE(name, title, ref)                                      \
    static void bhBenchRun(::bh::bench::Context &ctx);                         \
    static ::bh::bench::Registrar bhBenchRegistrar{name, title, ref,           \
                                                   nullptr, &bhBenchRun};      \
    static void bhBenchRun([[maybe_unused]] ::bh::bench::Context &ctx)

/**
 * Define and register a figure with a declarative experiment sweep. The
 * macro introduces the render body; the file must also define the
 * forward-declared sweep function:
 *
 *   BH_BENCH_SWEEP_FIGURE("fig06", "Benign performance under attack",
 *                         "paper Fig 6 (§8.1)") { ... render from ctx ... }
 *
 *   static bh::SweepSpec
 *   bhBenchSweep()
 *   {
 *       return bh::SweepSpec("fig06")...;
 *   }
 */
#define BH_BENCH_SWEEP_FIGURE(name, title, ref)                                \
    static ::bh::SweepSpec bhBenchSweep();                                     \
    static void bhBenchRun(::bh::bench::Context &ctx);                         \
    static ::bh::bench::Registrar bhBenchRegistrar{                            \
        name, title, ref, &bhBenchSweep, &bhBenchRun};                         \
    static void bhBenchRun([[maybe_unused]] ::bh::bench::Context &ctx)

/**
 * Like BH_BENCH_SWEEP_FIGURE, but for beyond-paper scaling studies:
 * registered and listable, yet excluded from "bh_bench all" so the
 * canonical full-set JSON export keeps its bytes as studies accumulate.
 * Run them by name: `bh_bench chscale`.
 */
#define BH_BENCH_SWEEP_STUDY(name, title, ref)                                 \
    static ::bh::SweepSpec bhBenchSweep();                                     \
    static void bhBenchRun(::bh::bench::Context &ctx);                         \
    static ::bh::bench::Registrar bhBenchRegistrar{                            \
        name, title, ref, &bhBenchSweep, &bhBenchRun, false};                  \
    static void bhBenchRun([[maybe_unused]] ::bh::bench::Context &ctx)
