/**
 * @file
 * Figure registry for the unified bench runner.
 *
 * Every figure driver registers a name, a title, the paper reference it
 * reproduces, and a run function. The bh_bench binary looks figures up by
 * name (`bh_bench fig06`), lists them (`--list`), or runs the whole set
 * (`bh_bench all`). Figures share one ExperimentPool, so experiment
 * points that several figures need (e.g. the attack-mix baselines used by
 * Figs 8, 9, 12, and 18) are simulated exactly once per process.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace bh::bench {

/** Shared state handed to every figure run. */
struct Context
{
    /** Memoizing experiment cache shared across figures. */
    ExperimentPool *pool = nullptr;
    /** Worker threads for grid prefetches. */
    unsigned jobs = 1;
};

using BenchFn = void (*)(Context &);

/** One registered figure driver. */
struct Figure
{
    std::string name;     ///< CLI name, e.g. "fig06".
    std::string title;    ///< Human-readable headline.
    std::string paperRef; ///< e.g. "paper Fig 6 (§8.1)".
    BenchFn fn = nullptr;
};

/** Register @p figure (called by static Registrar initializers). */
void registerFigure(Figure figure);

/** All registered figures, sorted by name. */
std::vector<Figure> figures();

/** Look up a figure by CLI name; nullptr when unknown. */
const Figure *findFigure(const std::string &name);

/** Static-initialization helper behind BH_BENCH_FIGURE. */
struct Registrar
{
    Registrar(const char *name, const char *title, const char *paper_ref,
              BenchFn fn)
    {
        registerFigure(Figure{name, title, paper_ref, fn});
    }
};

} // namespace bh::bench

/**
 * Define and register a figure driver:
 *
 *   BH_BENCH_FIGURE("fig06", "Benign performance under attack",
 *                   "paper Fig 6 (§8.1)") { ... use ctx ... }
 */
#define BH_BENCH_FIGURE(name, title, ref)                                     \
    static void bhBenchRun(::bh::bench::Context &ctx);                        \
    static ::bh::bench::Registrar bhBenchRegistrar{name, title, ref,          \
                                                   &bhBenchRun};              \
    static void bhBenchRun([[maybe_unused]] ::bh::bench::Context &ctx)
