/**
 * @file
 * Figs 13-16: the no-attacker sweep — BreakHammer must be (nearly) free
 * when all applications are benign.
 *  - Fig 13: per-mix-class normalized WS at N_RH = 64 (paper: +0.7% avg).
 *  - Fig 14: per-mix-class normalized unfairness at N_RH = 1K (+0.9%).
 *  - Fig 15: normalized WS vs N_RH.
 *  - Fig 16: normalized unfairness vs N_RH.
 * All normalized to the mechanism without BreakHammer.
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig13_16",
                      "Figs 13-16: BreakHammer with no attacker present",
                      "paper Figs 13, 14, 15, 16 (§8.2)")
{
    using namespace bh;
    using namespace bh::benchutil;

    // --- Figs 13 & 14: per mix class at fixed N_RH -------------------
    struct FixedPoint
    {
        const char *title;
        unsigned nRh;
        bool unfairness;
    };
    const FixedPoint fixed[] = {
        {"Fig 13: normalized WS, N_RH=64", 64, false},
        {"Fig 14: normalized unfairness, N_RH=1K", 1024, true},
    };

    for (const FixedPoint &fp : fixed) {
        std::printf("-- %s --\n%-12s", fp.title, "mix");
        for (MitigationType m : pairedMitigations())
            std::printf(" %11s", mitigationName(m));
        std::printf("\n");
        std::vector<double> overall;
        for (const std::string &pattern : benignMixPatterns()) {
            std::printf("%-12s", pattern.c_str());
            for (MitigationType mech : pairedMitigations()) {
                std::vector<double> vals;
                for (unsigned i = 0; i < mixesPerClass(); ++i) {
                    MixSpec mix = makeMix(pattern, i);
                    const ExperimentResult &base = point(ctx, mix, mech,
                                                         fp.nRh, false);
                    const ExperimentResult &paired = point(ctx, mix, mech,
                                                           fp.nRh, true);
                    vals.push_back(
                        fp.unfairness
                            ? paired.maxSlowdown / base.maxSlowdown
                            : paired.weightedSpeedup / base.weightedSpeedup);
                }
                double g = geomean(vals);
                overall.push_back(g);
                std::printf(" %11.3f", g);
            }
            std::printf("\n");
        }
        std::printf("geomean overall: %.4f\n\n", geomean(overall));
    }

    // --- Figs 15 & 16: N_RH sweep -------------------------------------
    std::printf("-- Fig 15 (WS) / Fig 16 (unfairness): +BH normalized to "
                "base, vs N_RH --\n");
    std::printf("%-8s", "NRH");
    for (MitigationType m : pairedMitigations())
        std::printf(" %8sWS %8sUF", mitigationName(m), "");
    std::printf("\n");

    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> ws, uf;
            for (const std::string &pattern : benignMixPatterns()) {
                MixSpec mix = makeMix(pattern, 0);
                const ExperimentResult &base = point(ctx, mix, mech, n_rh,
                                                     false);
                const ExperimentResult &paired = point(ctx, mix, mech,
                                                       n_rh, true);
                ws.push_back(paired.weightedSpeedup / base.weightedSpeedup);
                uf.push_back(paired.maxSlowdown / base.maxSlowdown);
            }
            std::printf(" %10.3f %10.3f", geomean(ws), geomean(uf));
        }
        std::printf("\n");
    }
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    // Two differently-shaped sections: Figs 13/14 take every mix of each
    // class at the two fixed thresholds; Figs 15/16 take the class's
    // first mix across the full N_RH sweep.
    SweepSpec per_class("fig13_16/fixed-nrh");
    per_class.mixClasses(benignMixPatterns(), mixesPerClass())
        .nRhValues({64, 1024})
        .mechanisms(pairedMitigations())
        .breakHammerAxis();

    SweepSpec nrh_sweep("fig13_16/nrh-sweep");
    nrh_sweep.mixClasses(benignMixPatterns(), 1)
        .nRhValues(nrhSweep())
        .mechanisms(pairedMitigations())
        .breakHammerAxis();

    return per_class.merge(nrh_sweep);
}
