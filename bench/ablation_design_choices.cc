/**
 * @file
 * Ablations of BreakHammer's design choices (DESIGN.md §4):
 *  1. Score attribution: proportional (paper) vs winner-takes-all.
 *  2. Counter organization: two time-interleaved sets (paper, Fig 4) vs a
 *     single hard-reset set.
 *  3. Throttle point: MSHR quota with free merges (paper, §4.3) vs a
 *     blunt quota that rejects secondary misses too.
 * Each ablation reports benign weighted speedup under attack and the
 * misidentification pressure on benign threads.
 */
#include "bench/bench_util.h"

namespace {

using namespace bh;

struct AblationResult
{
    double weightedSpeedup = 0;
    std::uint64_t suspectMarks = 0;
    std::uint64_t preventiveActions = 0;
};

AblationResult
run(const MixSpec &mix, MitigationType mech, unsigned n_rh,
    ScoreAttribution attribution, bool single_set, bool blunt)
{
    std::uint64_t insts = defaultInstructions();
    SystemConfig sys;
    sys.numCores = static_cast<unsigned>(mix.slots.size());
    sys.spec = DramSpec::ddr5();
    applyTimingSideEffects(mech, n_rh, &sys.spec);
    sys.mitigation = mech;
    sys.nRh = n_rh;
    sys.breakHammer = true;
    sys.bh = scaledBreakHammerConfig(insts);
    sys.bh.attribution = attribution;
    sys.bh.singleCounterSet = single_set;
    sys.bluntThrottle = blunt;

    System system(sys, mix.slots);
    RunResult raw = system.run(insts, insts * 150);

    std::vector<double> alone;
    for (const std::string &app : benignApps(mix))
        alone.push_back(soloIpc(app, insts));

    AblationResult out;
    out.weightedSpeedup = weightedSpeedup(raw.benignIpcs(), alone);
    out.suspectMarks = raw.suspectMarks;
    out.preventiveActions = raw.preventiveActions;
    return out;
}

} // namespace

int
main()
{
    using namespace bh;
    using namespace bh::benchutil;

    header("Ablations: BreakHammer design choices", "DESIGN.md §4");

    const unsigned n_rh = 512;
    const MitigationType mech = MitigationType::kGraphene;

    struct Variant
    {
        const char *name;
        ScoreAttribution attribution;
        bool singleSet;
        bool blunt;
    };
    const Variant variants[] = {
        {"paper (prop/2set/merge)", ScoreAttribution::kProportional, false,
         false},
        {"winner-takes-all", ScoreAttribution::kWinnerTakesAll, false,
         false},
        {"single counter set", ScoreAttribution::kProportional, true,
         false},
        {"blunt throttle", ScoreAttribution::kProportional, false, true},
    };

    std::printf("%-26s %10s %10s %12s\n", "variant", "WS(attack)",
                "marks", "prev.actions");
    for (const Variant &v : variants) {
        std::vector<double> ws;
        std::uint64_t marks = 0, actions = 0;
        for (const std::string &pattern : attackMixPatterns()) {
            MixSpec mix = makeMix(pattern, 0);
            AblationResult r =
                run(mix, mech, n_rh, v.attribution, v.singleSet, v.blunt);
            ws.push_back(r.weightedSpeedup);
            marks += r.suspectMarks;
            actions += r.preventiveActions;
        }
        std::printf("%-26s %10.3f %10llu %12llu\n", v.name, geomean(ws),
                    static_cast<unsigned long long>(marks),
                    static_cast<unsigned long long>(actions));
    }
    std::printf("\n(Graphene at N_RH=512 across the attack mix classes; "
                "WS is geomean weighted speedup of benign apps)\n");
    return 0;
}
