/**
 * @file
 * Ablations of BreakHammer's design choices (DESIGN.md §4):
 *  1. Score attribution: proportional (paper) vs winner-takes-all.
 *  2. Counter organization: two time-interleaved sets (paper, Fig 4) vs a
 *     single hard-reset set.
 *  3. Throttle point: MSHR quota with free merges (paper, §4.3) vs a
 *     blunt quota that rejects secondary misses too.
 * Each ablation reports benign weighted speedup under attack and the
 * misidentification pressure on benign threads.
 */
#include "bench/bench_util.h"

namespace {

using namespace bh;

constexpr unsigned kNrh = 512;
constexpr MitigationType kMech = MitigationType::kGraphene;

struct Variant
{
    const char *name;
    ScoreAttribution attribution;
    bool singleSet;
    bool blunt;
};

constexpr Variant kVariants[] = {
    {"paper (prop/2set/merge)", ScoreAttribution::kProportional, false,
     false},
    {"winner-takes-all", ScoreAttribution::kWinnerTakesAll, false, false},
    {"single counter set", ScoreAttribution::kProportional, true, false},
    {"blunt throttle", ScoreAttribution::kProportional, false, true},
};

/** The knob overrides shared by the sweep and the render lookups. */
void
applyVariant(ExperimentConfig &cfg, const Variant &v)
{
    cfg.bh = scaledBreakHammerConfig(defaultInstructions());
    cfg.bh.attribution = v.attribution;
    cfg.bh.singleCounterSet = v.singleSet;
    cfg.bluntThrottle = v.blunt;
}

ExperimentConfig
variantConfig(const MixSpec &mix, const Variant &v)
{
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.mechanism = kMech;
    cfg.nRh = kNrh;
    cfg.breakHammer = true;
    applyVariant(cfg, v);
    return cfg;
}

} // namespace

BH_BENCH_SWEEP_FIGURE("ablation", "Ablations: BreakHammer design choices",
                      "DESIGN.md §4")
{
    using namespace bh::benchutil;

    std::printf("%-26s %10s %10s %12s\n", "variant", "WS(attack)",
                "marks", "prev.actions");
    for (const Variant &v : kVariants) {
        std::vector<double> ws;
        std::uint64_t marks = 0, actions = 0;
        for (const std::string &pattern : attackMixPatterns()) {
            const ExperimentResult &r =
                ctx.store->get(variantConfig(makeMix(pattern, 0), v));
            ws.push_back(r.weightedSpeedup);
            marks += r.raw.suspectMarks;
            actions += r.preventiveActions;
        }
        std::printf("%-26s %10.3f %10llu %12llu\n", v.name, geomean(ws),
                    static_cast<unsigned long long>(marks),
                    static_cast<unsigned long long>(actions));
    }
    std::printf("\n(Graphene at N_RH=512 across the attack mix classes; "
                "WS is geomean weighted speedup of benign apps)\n");
}

static bh::SweepSpec
bhBenchSweep()
{
    SweepSpec spec("ablation");
    spec.mixClasses(attackMixPatterns(), 1)
        .nRh(kNrh)
        .mechanism(kMech)
        .breakHammer(true);
    for (const Variant &v : kVariants)
        spec.variant(v.name,
                     [&v](ExperimentConfig &cfg) { applyVariant(cfg, v); });
    return spec;
}
