/**
 * @file
 * Shared helpers for the per-figure benchmark drivers.
 *
 * Every bench prints the same rows/series the paper's figure reports,
 * scaled by BH_INSTS / BH_MIXES / BH_FULL (see sim/experiment.h). Results
 * are raw text tables so diffs against EXPERIMENTS.md stay reviewable.
 */
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "stats/metrics.h"

namespace bh::benchutil {

/** Print the standard bench header with the scale knobs in effect. */
inline void
header(const char *title, const char *paper_ref)
{
    std::printf("==== %s ====\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("scale: BH_INSTS=%llu BH_MIXES=%u%s\n\n",
                static_cast<unsigned long long>(defaultInstructions()),
                mixesPerClass(),
                nrhSweep().size() > 3 ? " (BH_FULL sweep)" : "");
}

/** All attack mixes at the configured mixes-per-class scale. */
inline std::vector<MixSpec>
attackMixes()
{
    std::vector<MixSpec> mixes;
    for (const std::string &pattern : attackMixPatterns())
        for (unsigned i = 0; i < mixesPerClass(); ++i)
            mixes.push_back(makeMix(pattern, i));
    return mixes;
}

/** All benign mixes at the configured mixes-per-class scale. */
inline std::vector<MixSpec>
benignMixes()
{
    std::vector<MixSpec> mixes;
    for (const std::string &pattern : benignMixPatterns())
        for (unsigned i = 0; i < mixesPerClass(); ++i)
            mixes.push_back(makeMix(pattern, i));
    return mixes;
}

/** Cache of per-mix no-mitigation baselines (N_RH independent). */
class BaselineCache
{
  public:
    const ExperimentResult &
    get(const MixSpec &mix)
    {
        auto it = cache.find(mix.name);
        if (it != cache.end())
            return it->second;
        ExperimentConfig cfg;
        cfg.mix = mix;
        cfg.mechanism = MitigationType::kNone;
        return cache.emplace(mix.name, runExperiment(cfg)).first->second;
    }

  private:
    std::map<std::string, ExperimentResult> cache;
};

/** Run one (mix, mechanism, N_RH, BH) point. */
inline ExperimentResult
point(const MixSpec &mix, MitigationType mech, unsigned n_rh,
      bool break_hammer)
{
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.mechanism = mech;
    cfg.nRh = n_rh;
    cfg.breakHammer = break_hammer;
    return runExperiment(cfg);
}

} // namespace bh::benchutil
