/**
 * @file
 * Shared helpers for the per-figure benchmark drivers.
 *
 * Every bench prints the same rows/series the paper's figure reports,
 * scaled by BH_INSTS / BH_MIXES / BH_FULL (see sim/experiment.h). Results
 * are raw text tables so diffs against EXPERIMENTS.md stay reviewable.
 *
 * Figures declare their grid as a SweepSpec (sim/sweep.h); the runner
 * prefetches it through the Context's shared ResultStore (parallel at
 * --jobs=N, deduped across figures, persisted with --store) before the
 * render function runs, so point()/baseline() are cache reads.
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "sim/experiment.h"
#include "stats/metrics.h"

namespace bh::benchutil {

using bench::Context;

/** Print the standard bench header with the scale knobs in effect. */
inline void
header(const std::string &title, const std::string &paper_ref)
{
    std::printf("==== %s ====\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: BH_INSTS=%llu BH_MIXES=%u%s\n\n",
                static_cast<unsigned long long>(defaultInstructions()),
                mixesPerClass(),
                nrhSweep().size() > 3 ? " (BH_FULL sweep)" : "");
}

/** All attack mixes at the configured mixes-per-class scale. */
inline std::vector<MixSpec>
attackMixes()
{
    std::vector<MixSpec> mixes;
    for (const std::string &pattern : attackMixPatterns())
        for (unsigned i = 0; i < mixesPerClass(); ++i)
            mixes.push_back(makeMix(pattern, i));
    return mixes;
}

/** All benign mixes at the configured mixes-per-class scale. */
inline std::vector<MixSpec>
benignMixes()
{
    std::vector<MixSpec> mixes;
    for (const std::string &pattern : benignMixPatterns())
        for (unsigned i = 0; i < mixesPerClass(); ++i)
            mixes.push_back(makeMix(pattern, i));
    return mixes;
}

/** Config of one (mix, mechanism, N_RH, BH) point. */
inline ExperimentConfig
pointConfig(const MixSpec &mix, MitigationType mech, unsigned n_rh,
            bool break_hammer)
{
    ExperimentConfig cfg;
    cfg.mix = mix;
    cfg.mechanism = mech;
    cfg.nRh = n_rh;
    cfg.breakHammer = break_hammer;
    return cfg;
}

/** Config of a mix's no-mitigation baseline (see SweepSpec). */
inline ExperimentConfig
baselineConfig(const MixSpec &mix)
{
    return SweepSpec::baselinePoint(mix);
}

/** Cached result of one (mix, mechanism, N_RH, BH) point. */
inline const ExperimentResult &
point(Context &ctx, const MixSpec &mix, MitigationType mech, unsigned n_rh,
      bool break_hammer)
{
    return ctx.store->get(pointConfig(mix, mech, n_rh, break_hammer));
}

/** Cached no-mitigation baseline of @p mix. */
inline const ExperimentResult &
baseline(Context &ctx, const MixSpec &mix)
{
    return ctx.store->get(baselineConfig(mix));
}

} // namespace bh::benchutil
