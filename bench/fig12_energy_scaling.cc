/**
 * @file
 * Fig 12: DRAM energy vs N_RH with an attacker present, mechanism and
 * mechanism+BH normalized to a no-mitigation baseline. Expected shape:
 * baseline energy grows steeply as N_RH shrinks (AQUA and RFM worst);
 * BreakHammer reduces it substantially (paper: -55.4% average).
 */
#include "bench/bench_util.h"

BH_BENCH_SWEEP_FIGURE("fig12",
                      "Fig 12: DRAM energy scaling vs N_RH, attacker present",
                      "paper Fig 12 (§8.1)")
{
    using namespace bh;
    using namespace bh::benchutil;

    std::vector<MixSpec> mixes = attackMixes();

    std::printf("%-8s", "NRH");
    for (MitigationType m : pairedMitigations())
        std::printf(" %9s %9s", mitigationName(m), "+BH");
    std::printf("\n");

    std::vector<double> savings;
    for (unsigned n_rh : nrhSweep()) {
        std::printf("%-8u", n_rh);
        for (MitigationType mech : pairedMitigations()) {
            std::vector<double> base_norm, paired_norm;
            for (const MixSpec &mix : mixes) {
                double nodef = baseline(ctx, mix).energyNj;
                double b =
                    point(ctx, mix, mech, n_rh, false).energyNj / nodef;
                double p =
                    point(ctx, mix, mech, n_rh, true).energyNj / nodef;
                base_norm.push_back(b);
                paired_norm.push_back(p);
                savings.push_back(p / b);
            }
            std::printf(" %9.3f %9.3f", geomean(base_norm),
                        geomean(paired_norm));
        }
        std::printf("\n");
    }
    std::printf("\n(normalized DRAM energy vs no-mitigation; paper: -55.4%%"
                " average with BH)\nmeasured mean ratio +BH/base: %.3f\n",
                mean(savings));
}

static bh::SweepSpec
bhBenchSweep()
{
    using namespace bh;
    using namespace bh::benchutil;
    return SweepSpec("fig12")
        .mixes(attackMixes())
        .withBaselines()
        .nRhValues(nrhSweep())
        .mechanisms(pairedMitigations())
        .breakHammerAxis();
}
