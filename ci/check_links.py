#!/usr/bin/env python3
"""Check that intra-repo markdown links (and their anchors) resolve.

Scans every tracked *.md file (skipping build directories), extracts
inline links/images `[text](target)`, and verifies that each relative
target exists on disk. `#section` fragments — both same-file (`#x`) and
cross-file (`other.md#x`) — are validated against the target document's
headings using GitHub's anchor derivation (lowercase, punctuation
stripped, spaces to hyphens, duplicate anchors suffixed -1, -2, ...).
External schemes (http/https/mailto) are ignored. Prints every broken
link and exits non-zero if any.

Stdlib only — no pip dependencies.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", ".git", ".github"}

# Inline links and images; [text](target "title") titles are stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

# Fenced code blocks often contain example paths that are not links.
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files():
    for path in sorted(REPO.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def non_fence_lines(path: pathlib.Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield lineno, line


def links_of(path: pathlib.Path):
    for lineno, line in non_fence_lines(path):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> fragment derivation (punctuation dropped)."""
    # Strip inline code/emphasis markers and links before slugging.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path):
    """All valid fragments of a document (duplicates get -N suffixes)."""
    seen = {}
    anchors = set()
    for _, line in non_fence_lines(path):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_anchor(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def main() -> int:
    broken = []
    checked = 0
    anchor_cache = {}

    def anchors(md_path: pathlib.Path):
        if md_path not in anchor_cache:
            anchor_cache[md_path] = anchors_of(md_path)
        return anchor_cache[md_path]

    for md in markdown_files():
        for lineno, target in links_of(md):
            if EXTERNAL_RE.match(target):
                continue  # http(s)/mailto/etc.
            path_part, _, fragment = target.partition("#")
            if path_part:
                checked += 1
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    broken.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link "
                        f"'{target}' -> {resolved.relative_to(REPO) if resolved.is_relative_to(REPO) else resolved}"
                    )
                    continue
            else:
                resolved = md  # Pure '#anchor' into the same file.
            if fragment:
                if resolved.suffix.lower() != ".md":
                    continue  # Anchors into non-markdown: not checkable.
                checked += 1
                if fragment.lower() not in anchors(resolved):
                    broken.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken anchor "
                        f"'#{fragment}' in '{target}' (no such heading "
                        f"in {resolved.relative_to(REPO)})"
                    )
    for line in broken:
        print(line, file=sys.stderr)
    print(f"check_links: {checked} intra-repo links/anchors checked, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
