#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every tracked *.md file (skipping build directories), extracts
inline links/images `[text](target)`, and verifies that each relative
target exists on disk (anchors are stripped; `#section` fragments are not
validated against headings). External schemes (http/https/mailto) are
ignored. Prints every broken link and exits non-zero if any.

Stdlib only — no pip dependencies.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", ".git", ".github"}

# Inline links and images; [text](target "title") titles are stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

# Fenced code blocks often contain example paths that are not links.
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files():
    for path in sorted(REPO.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def links_of(path: pathlib.Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def main() -> int:
    broken = []
    checked = 0
    for md in markdown_files():
        for lineno, target in links_of(md):
            if EXTERNAL_RE.match(target):
                continue  # http(s)/mailto/etc.
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue  # Pure anchor into the same file.
            checked += 1
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(
                    f"{md.relative_to(REPO)}:{lineno}: broken link "
                    f"'{target}' -> {resolved.relative_to(REPO) if resolved.is_relative_to(REPO) else resolved}"
                )
    for line in broken:
        print(line, file=sys.stderr)
    print(f"check_links: {checked} intra-repo links checked, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
