#!/usr/bin/env python3
"""Compare a benchmark's wall clock against the checked-in perf budget.

Usage: check_perf.py <budget-key> <time-v-output-file>

The second argument is the stderr of `/usr/bin/time -v <command>`; the
script extracts the "Elapsed (wall clock) time" line, compares it against
ci/perf_budget.json's entry for <budget-key>, prints a summary, and exits
non-zero when the budget is exceeded. Stdlib only — no pip dependencies.
"""

import json
import pathlib
import re
import sys


def parse_wall_seconds(time_v_text: str) -> float:
    """Parse GNU time -v's h:mm:ss or m:ss.ff elapsed format."""
    match = re.search(
        r"Elapsed \(wall clock\) time.*:\s*(?:(\d+):)?(\d+):([\d.]+)",
        time_v_text,
    )
    if not match:
        raise ValueError("no 'Elapsed (wall clock) time' line found")
    hours = int(match.group(1) or 0)
    minutes = int(match.group(2))
    seconds = float(match.group(3))
    return hours * 3600 + minutes * 60 + seconds


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    key, time_file = sys.argv[1], sys.argv[2]

    budget_path = pathlib.Path(__file__).parent / "perf_budget.json"
    budgets = json.loads(budget_path.read_text())
    if key not in budgets:
        print(f"error: no budget entry '{key}' in {budget_path}",
              file=sys.stderr)
        return 2
    budget = budgets[key]
    limit = float(budget["max_wall_seconds"])

    wall = parse_wall_seconds(pathlib.Path(time_file).read_text())

    print(f"perf[{key}]: wall clock {wall:.2f} s, budget {limit:.2f} s "
          f"({wall / limit * 100.0:.0f}% of budget)")
    print(f"  command: {budget.get('command', '?')}")
    if wall > limit:
        print(f"perf[{key}]: FAIL — over budget by {wall - limit:.2f} s. "
              "If this slowdown is intentional, update ci/perf_budget.json "
              "with a justification.", file=sys.stderr)
        return 1
    print(f"perf[{key}]: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
