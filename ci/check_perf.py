#!/usr/bin/env python3
"""Compare a benchmark's wall clock against the checked-in perf budget.

Usage: check_perf.py <budget-key> <time-v-output-file>
       check_perf.py --require-all <key>=<time-v-file> [<key>=<file> ...]

The time file is the stderr of `/usr/bin/time -v <command>`; the script
extracts the "Elapsed (wall clock) time" line, compares it against
ci/perf_budget.json's entry for <budget-key>, prints a summary, and exits
non-zero when the budget is exceeded.

--require-all is the coverage check: every row of perf_budget.json must
appear among the <key>=<file> measurements (each of which is also
re-verified against its budget). Without it, deleting a measurement step
from the workflow would silently retire its budget row — the budget
would still be "green" while enforcing nothing. Stdlib only — no pip
dependencies.
"""

import json
import pathlib
import re
import sys


def parse_wall_seconds(time_v_text: str) -> float:
    """Parse GNU time -v's h:mm:ss or m:ss.ff elapsed format."""
    match = re.search(
        r"Elapsed \(wall clock\) time.*:\s*(?:(\d+):)?(\d+):([\d.]+)",
        time_v_text,
    )
    if not match:
        raise ValueError("no 'Elapsed (wall clock) time' line found")
    hours = int(match.group(1) or 0)
    minutes = int(match.group(2))
    seconds = float(match.group(3))
    return hours * 3600 + minutes * 60 + seconds


def load_budgets() -> tuple[pathlib.Path, dict]:
    budget_path = pathlib.Path(__file__).parent / "perf_budget.json"
    return budget_path, json.loads(budget_path.read_text())


def check_one(key: str, time_file: str, budgets: dict,
              budget_path: pathlib.Path) -> int:
    if key not in budgets:
        print(f"error: no budget entry '{key}' in {budget_path}",
              file=sys.stderr)
        return 2
    budget = budgets[key]
    limit = float(budget["max_wall_seconds"])

    wall = parse_wall_seconds(pathlib.Path(time_file).read_text())

    print(f"perf[{key}]: wall clock {wall:.2f} s, budget {limit:.2f} s "
          f"({wall / limit * 100.0:.0f}% of budget)")
    print(f"  command: {budget.get('command', '?')}")
    if wall > limit:
        print(f"perf[{key}]: FAIL — over budget by {wall - limit:.2f} s. "
              "If this slowdown is intentional, update ci/perf_budget.json "
              "with a justification.", file=sys.stderr)
        return 1
    print(f"perf[{key}]: OK")
    return 0


def require_all(pairs: list[str]) -> int:
    budget_path, budgets = load_budgets()
    measured = {}
    for pair in pairs:
        key, sep, time_file = pair.partition("=")
        if not sep or not key or not time_file:
            print(f"error: malformed measurement '{pair}' "
                  "(want key=time-v-file)", file=sys.stderr)
            return 2
        measured[key] = time_file

    missing = sorted(set(budgets) - set(measured))
    if missing:
        print(f"perf: FAIL — budget row(s) with no measurement: "
              f"{', '.join(missing)}. Every row of {budget_path} must be "
              "measured by the workflow; add the measurement step or "
              "remove the row.", file=sys.stderr)
        return 1

    worst = 0
    for key, time_file in sorted(measured.items()):
        worst = max(worst, check_one(key, time_file, budgets, budget_path))
    if worst == 0:
        print(f"perf: all {len(budgets)} budget row(s) measured and "
              "within budget")
    return worst


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--require-all":
        if len(sys.argv) < 3:
            print(__doc__, file=sys.stderr)
            return 2
        return require_all(sys.argv[2:])
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    budget_path, budgets = load_budgets()
    return check_one(sys.argv[1], sys.argv[2], budgets, budget_path)


if __name__ == "__main__":
    sys.exit(main())
