#!/usr/bin/env python3
"""Run clang-tidy over src/ and gate on unsuppressed findings.

Usage: check_tidy.py [--build-dir build] [--jobs N] [files...]

Reads the compilation database (CMAKE_EXPORT_COMPILE_COMMANDS=ON) from
the build directory, runs clang-tidy (checks come from the repo-root
.clang-tidy) over every src/*.cc entry — or just the files given — and
compares the findings against ci/tidy_suppressions.json.

A finding is suppressed only by an exact (file, check) row whose
"reason" explains why it is accepted; anything else fails the job. A
suppression row that no longer matches any finding is reported as stale
(non-fatal) so retired rows get cleaned up rather than masking future
regressions. Stdlib only — no pip dependencies.
"""

import argparse
import collections
import json
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SUPPRESSIONS = REPO / "ci" / "tidy_suppressions.json"

# clang-tidy diagnostic: file:line:col: warning: message [check-name]
_DIAG = re.compile(
    r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s+(?P<message>.*?)\s+\[(?P<check>[\w.,-]+)\]$",
    re.M)


def tidy_binary() -> str:
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15"):
        if shutil.which(name):
            return name
    sys.exit("check_tidy.py: no clang-tidy binary on PATH")


def compile_db_files(build_dir: pathlib.Path) -> list[str]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        sys.exit(f"check_tidy.py: {db_path} not found — configure with "
                 f"CMAKE_EXPORT_COMPILE_COMMANDS=ON")
    entries = json.loads(db_path.read_text())
    files = sorted({
        e["file"] for e in entries
        if "/src/" in e["file"] and e["file"].endswith(".cc")
    })
    if not files:
        sys.exit("check_tidy.py: compilation database has no src/ entries")
    return files


def run_tidy(binary: str, build_dir: pathlib.Path, files: list[str],
             jobs: int) -> str:
    out = []
    for i in range(0, len(files), jobs):
        batch = files[i:i + jobs]
        proc = subprocess.run(
            [binary, "-p", str(build_dir), "--quiet", *batch],
            capture_output=True, text=True)
        out.append(proc.stdout)
        # clang-tidy exits non-zero on findings; a crash has no
        # parseable diagnostics and must not pass silently.
        if proc.returncode != 0 and not _DIAG.search(proc.stdout or ""):
            sys.stderr.write(proc.stderr)
            sys.exit(f"check_tidy.py: clang-tidy failed on {batch}")
    return "\n".join(out)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--jobs", type=int, default=8,
                        help="files per clang-tidy invocation")
    parser.add_argument("files", nargs="*")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    files = args.files or compile_db_files(build_dir)
    output = run_tidy(tidy_binary(), build_dir, files, args.jobs)

    suppressions = json.loads(SUPPRESSIONS.read_text())
    suppressed_keys = {(s["file"], s["check"]) for s in suppressions}
    for s in suppressions:
        if not s.get("reason", "").strip():
            print(f"check_tidy.py: suppression without a reason: {s}",
                  file=sys.stderr)
            return 1

    findings = []
    used = set()
    seen = set()
    for line in output.splitlines():
        m = _DIAG.match(line.strip())
        if m is None:
            continue
        try:
            rel = str(pathlib.Path(m.group("file")).resolve()
                      .relative_to(REPO))
        except ValueError:
            continue  # diagnostics from system headers
        # A diagnostic with several check aliases counts under each.
        checks = m.group("check").split(",")
        key_line = (rel, m.group("line"), m.group("check"))
        if key_line in seen:
            continue  # header diagnostics repeat per includer
        seen.add(key_line)
        if any((rel, c) in suppressed_keys for c in checks):
            used.update((rel, c) for c in checks
                        if (rel, c) in suppressed_keys)
            continue
        findings.append(
            f"{rel}:{m.group('line')}: [{m.group('check')}] "
            f"{m.group('message')}")

    for stale in sorted(suppressed_keys - used):
        print(f"check_tidy.py: note: stale suppression (no matching "
              f"finding): {stale[0]} [{stale[1]}]")

    if findings:
        counts = collections.Counter(
            f.split("[")[1].split("]")[0] for f in findings)
        for f in findings:
            print(f)
        print(f"check_tidy.py: {len(findings)} unsuppressed finding(s): "
              + ", ".join(f"{c} x{n}" for c, n in counts.most_common()),
              file=sys.stderr)
        return 1
    print(f"check_tidy.py: clean — {len(files)} file(s), "
          f"{len(used)} suppression(s) in use")
    return 0


if __name__ == "__main__":
    sys.exit(main())
