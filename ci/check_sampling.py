#!/usr/bin/env python3
"""Validate an interval-sampled benchmark run against its exact twin.

Usage: check_sampling.py <exact.json> <sampled.json> [budget.json]

Both inputs are bh_bench --json dumps of the same figure(s); the sampled
one must have been produced with --sample=W/M/F. Records are matched by
(mix, mechanism, nrh, breakhammer) -- the experiment key itself differs
because sampled runs carry a |sample= suffix. For every matched record
selected by the budget's "select" clause, each metric's relative error
against the exact run must stay within the budget's max_rel_err (an
absolute abs_tolerance, when present, forgives small-count noise first).
Prints a per-point summary and exits non-zero when any bound is
exceeded, when the sampled dump lacks sampling blocks, or when the
selection matches nothing. Stdlib only -- no pip dependencies.
"""

import json
import pathlib
import sys

MATCH_FIELDS = ("mix", "mechanism", "nrh", "breakhammer")


def load_records(path):
    data = json.loads(pathlib.Path(path).read_text())
    records = {}
    for rec in data["experiments"]:
        records[tuple(rec[f] for f in MATCH_FIELDS)] = rec
    return records


def rel_err(sampled, exact):
    if exact == 0:
        return 0.0 if sampled == 0 else float("inf")
    return abs(sampled / exact - 1.0)


def main() -> int:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    exact_path, sampled_path = sys.argv[1], sys.argv[2]
    budget_path = pathlib.Path(
        sys.argv[3] if len(sys.argv) == 4
        else pathlib.Path(__file__).parent / "sampling_budget.json")
    budget = json.loads(budget_path.read_text())
    select = budget.get("select", {})
    metrics = budget["metrics"]

    exact = load_records(exact_path)
    sampled = load_records(sampled_path)

    checked = 0
    failures = []
    for key, ex in sorted(exact.items()):
        rec = dict(zip(MATCH_FIELDS, key))
        if any(rec.get(f) != want for f, want in select.items()):
            continue
        sp = sampled.get(key)
        if sp is None:
            failures.append(f"{key}: missing from sampled dump")
            continue
        if "sampling" not in sp:
            failures.append(f"{key}: sampled record has no sampling block "
                            "(did the run use --sample?)")
            continue
        checked += 1
        parts = []
        for metric, bound in metrics.items():
            err = rel_err(sp[metric], ex[metric])
            abs_err = abs(sp[metric] - ex[metric])
            tol = bound.get("abs_tolerance")
            ok = (tol is not None and abs_err <= tol) or \
                err <= bound["max_rel_err"]
            parts.append(f"{metric}={err:.3f}"
                         f"/{bound['max_rel_err']}{'' if ok else ' FAIL'}")
            if not ok:
                failures.append(
                    f"{key}: {metric} rel err {err:.3f} > "
                    f"{bound['max_rel_err']} (sampled {sp[metric]}, "
                    f"exact {ex[metric]})")
        print(f"sampling[{'/'.join(str(k) for k in key)}]: "
              f"{' '.join(parts)}")

    if checked == 0 and not failures:
        print(f"error: select clause {select} matched no records "
              f"in {exact_path}", file=sys.stderr)
        return 2
    if failures:
        print(f"sampling: FAIL -- {len(failures)} bound(s) exceeded "
              f"across {checked} point(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("If the accuracy change is understood and intentional, "
              "update ci/sampling_budget.json with a justification.",
              file=sys.stderr)
        return 1
    print(f"sampling: OK -- {checked} point(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
