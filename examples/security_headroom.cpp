/**
 * @file
 * Security headroom: combine the analytic multi-thread-attack bound
 * (Expr 2, §5.2) with the empirical RowHammer oracle to answer two
 * questions an integrator would ask:
 *   1. How many threads must an attacker control to evade detection at a
 *      given score target, across TH_outlier settings?
 *   2. Does the paired mechanism actually keep every row below N_RH under
 *      a live hammering workload? (Ground truth from the oracle.)
 *
 * Demonstrates: breakhammer/security_model.h, and an oracle-enabled
 * SweepSpec over a custom double-attacker mix run through a ResultStore —
 * the oracle verdict (max per-row activation count, violation count) now
 * rides ExperimentResult, so no direct System construction is needed.
 */
#include <cstdio>

#include "breakhammer/security_model.h"
#include "sim/result_store.h"
#include "sim/sweep.h"

namespace {

using namespace bh;

/** A 2-benign + 2-attacker mix (the paper's multi-thread-attack shape). */
MixSpec
headroomMix()
{
    MixSpec mix;
    mix.name = "headroom";
    mix.pattern = "HHAA";
    mix.slots.resize(4);
    mix.slots[0].appName = "mcf_like";
    mix.slots[1].appName = "lbm_like";
    mix.slots[2].kind = WorkloadSlot::Kind::kAttacker;
    mix.slots[2].attacker.numBanks = 4;
    mix.slots[3].kind = WorkloadSlot::Kind::kAttacker;
    mix.slots[3].attacker.numBanks = 4;
    return mix;
}

} // namespace

int
main()
{
    std::printf("1) Analytic bound (Expr 2): attacker thread share needed "
                "to reach a score target undetected\n\n");
    std::printf("%-14s", "target ratio");
    for (double o : {0.05, 0.35, 0.65, 0.95})
        std::printf("  THo=%-5.2f", o);
    std::printf("\n");
    for (double ratio : {2.0, 3.0, 5.0, 8.0}) {
        std::printf("%-14.1f", ratio);
        for (double o : {0.05, 0.35, 0.65, 0.95})
            std::printf("  %8.1f%%",
                        100.0 * requiredAttackerFraction(ratio, o));
        std::printf("\n");
    }

    std::printf("\n2) Empirical check: oracle-verified max per-row "
                "activation count under live hammering\n\n");

    SweepSpec spec("security-headroom");
    spec.mix(headroomMix())
        .mechanisms({MitigationType::kGraphene, MitigationType::kRfm,
                     MitigationType::kPrac})
        .nRhValues({512, 128})
        .breakHammer(true)
        .oracle(true)
        .instructions(50000)
        .forEach([](ExperimentConfig &cfg) {
            cfg.bh.window = 150000;
            cfg.bh.thThreat = 2.0;
        });

    ResultStore store(2);
    std::vector<ExperimentConfig> grid = spec.expand();
    store.prefetch(grid);

    std::printf("%-12s %8s %12s %12s\n", "mechanism", "NRH",
                "max count", "violations");
    for (const ExperimentConfig &cfg : grid) {
        const ExperimentResult &r = store.get(cfg);
        std::printf("%-12s %8u %12u %12llu\n",
                    mitigationName(cfg.mechanism), cfg.nRh,
                    r.raw.oracleMaxCount,
                    static_cast<unsigned long long>(
                        r.raw.oracleViolations));
    }
    std::printf("\nA mechanism is RowHammer-safe iff violations = 0 and "
                "max count < N_RH — BreakHammer attached does not\nweaken "
                "the guarantee (§5.1).\n");
    return 0;
}
