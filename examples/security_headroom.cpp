/**
 * @file
 * Security headroom: combine the analytic multi-thread-attack bound
 * (Expr 2, §5.2) with the empirical RowHammer oracle to answer two
 * questions an integrator would ask:
 *   1. How many threads must an attacker control to evade detection at a
 *      given score target, across TH_outlier settings?
 *   2. Does the paired mechanism actually keep every row below N_RH under
 *      a live hammering workload? (Ground truth from the oracle.)
 *
 * Demonstrates: breakhammer/security_model.h and the oracle-enabled
 * System configuration.
 */
#include <cstdio>

#include "breakhammer/security_model.h"
#include "sim/system.h"

int
main()
{
    using namespace bh;

    std::printf("1) Analytic bound (Expr 2): attacker thread share needed "
                "to reach a score target undetected\n\n");
    std::printf("%-14s", "target ratio");
    for (double o : {0.05, 0.35, 0.65, 0.95})
        std::printf("  THo=%-5.2f", o);
    std::printf("\n");
    for (double ratio : {2.0, 3.0, 5.0, 8.0}) {
        std::printf("%-14.1f", ratio);
        for (double o : {0.05, 0.35, 0.65, 0.95})
            std::printf("  %8.1f%%",
                        100.0 * requiredAttackerFraction(ratio, o));
        std::printf("\n");
    }

    std::printf("\n2) Empirical check: oracle-verified max per-row "
                "activation count under live hammering\n\n");
    std::printf("%-12s %8s %12s %12s\n", "mechanism", "NRH",
                "max count", "violations");
    for (MitigationType mech :
         {MitigationType::kGraphene, MitigationType::kRfm,
          MitigationType::kPrac}) {
        for (unsigned n_rh : {512u, 128u}) {
            SystemConfig cfg;
            cfg.mitigation = mech;
            cfg.nRh = n_rh;
            cfg.breakHammer = true;
            cfg.bh.window = 150000;
            cfg.bh.thThreat = 2.0;
            cfg.enableOracle = true;

            std::vector<WorkloadSlot> slots(4);
            slots[0].appName = "mcf_like";
            slots[1].appName = "lbm_like";
            slots[2].kind = WorkloadSlot::Kind::kAttacker;
            slots[2].attacker.numBanks = 4;
            slots[3].kind = WorkloadSlot::Kind::kAttacker;
            slots[3].attacker.numBanks = 4;

            System sys(cfg, slots);
            RunResult r = sys.run(50000, 20000000);
            std::printf("%-12s %8u %12u %12llu\n", mitigationName(mech),
                        n_rh, r.oracleMaxCount,
                        static_cast<unsigned long long>(
                            r.oracleViolations));
        }
    }
    std::printf("\nA mechanism is RowHammer-safe iff violations = 0 and "
                "max count < N_RH — BreakHammer attached does not\nweaken "
                "the guarantee (§5.1).\n");
    return 0;
}
