/**
 * @file
 * Attack study: sweep attacker aggressiveness (aggressor rows per bank and
 * attacked-bank footprint) against one mitigation mechanism and watch
 * BreakHammer's detection respond — scores, suspect marks, quota, and the
 * benign applications' recovered performance.
 *
 * Demonstrates: declaring the attacker-shape grid as a SweepSpec variant
 * axis over custom mixes, running it through a ResultStore (every point
 * simulates once, in parallel, and could be persisted with open()), and
 * reading the BreakHammer introspection that ExperimentResult now carries
 * (the §4 "feedback to system software": per-thread final scores and
 * quotas, quota rejection counts).
 */
#include <cstdio>

#include "sim/result_store.h"
#include "sim/sweep.h"

namespace {

using namespace bh;

constexpr std::uint64_t kInsts = 80000;

/** A 3-benign + 1-attacker mix with the given attack shape. */
MixSpec
attackMix(unsigned aggressors, unsigned banks)
{
    MixSpec mix;
    char name[48];
    std::snprintf(name, sizeof(name), "atkstudy-r%u-b%u", aggressors,
                  banks);
    mix.name = name;
    mix.pattern = "HHMA";
    mix.slots.resize(4);
    mix.slots[0].appName = "mcf_like";
    mix.slots[1].appName = "zeusmp_like";
    mix.slots[2].appName = "tpcc_like";
    mix.slots[3].kind = WorkloadSlot::Kind::kAttacker;
    mix.slots[3].attacker.numAggressors = aggressors;
    mix.slots[3].attacker.numBanks = banks;
    return mix;
}

} // namespace

int
main()
{
    std::printf("Attack aggressiveness study (Graphene+BreakHammer, "
                "N_RH=512)\n\n");

    SweepSpec spec("attack-study");
    for (unsigned aggressors : {2u, 4u, 8u})
        for (unsigned banks : {2u, 8u, 32u})
            spec.mix(attackMix(aggressors, banks));
    spec.mechanism(MitigationType::kGraphene)
        .nRh(512)
        .breakHammer(true)
        .instructions(kInsts)
        .forEach([](ExperimentConfig &cfg) {
            cfg.bh = scaledBreakHammerConfig(kInsts);
        });

    ResultStore store(2);
    std::vector<ExperimentConfig> grid = spec.expand();
    store.prefetch(grid);

    std::printf("%9s %6s %12s %10s %10s %8s %12s\n", "rows/bank", "banks",
                "prev.actions", "benignIPC", "atk score", "quota",
                "quota rejs");
    for (const ExperimentConfig &cfg : grid) {
        const ExperimentResult &r = store.get(cfg);
        double benign_ipc = 0;
        for (double ipc : r.raw.benignIpcs())
            benign_ipc += ipc;
        const WorkloadSlot &attacker = cfg.mix.slots[3];
        std::printf("%9u %6u %12llu %10.3f %10.2f %8u %12llu\n",
                    attacker.attacker.numAggressors,
                    attacker.attacker.numBanks,
                    static_cast<unsigned long long>(r.preventiveActions),
                    benign_ipc, r.raw.bhScores[3], r.raw.bhQuotas[3],
                    static_cast<unsigned long long>(
                        r.raw.quotaRejections));
    }

    std::printf("\nReading the table: wider/denser hammering triggers more "
                "preventive actions, drives the attacker's\nRowHammer-"
                "preventive score up, and BreakHammer answers by cutting "
                "its MSHR quota (quota rejections).\n");
    return 0;
}
