/**
 * @file
 * Attack study: sweep attacker aggressiveness (aggressor rows per bank and
 * attacked-bank footprint) against one mitigation mechanism and watch
 * BreakHammer's detection respond — scores, suspect marks, quota, and the
 * benign applications' recovered performance.
 *
 * Demonstrates: direct System construction, custom AttackerConfig, and the
 * BreakHammer introspection API (the §4 "feedback to system software").
 * This deliberately stays on the low-level System API rather than the
 * ExperimentScheduler: the introspection readouts live on the System
 * object, which runExperiment() does not expose.
 */
#include <cstdio>

#include "sim/experiment.h"
#include "sim/system.h"

namespace {

using namespace bh;

void
runCase(unsigned aggressors, unsigned banks)
{
    const std::uint64_t insts = 80000;

    SystemConfig cfg;
    cfg.mitigation = MitigationType::kGraphene;
    cfg.nRh = 512;
    cfg.breakHammer = true;
    cfg.bh = scaledBreakHammerConfig(insts);

    std::vector<WorkloadSlot> slots(4);
    slots[0].appName = "mcf_like";
    slots[1].appName = "zeusmp_like";
    slots[2].appName = "tpcc_like";
    slots[3].kind = WorkloadSlot::Kind::kAttacker;
    slots[3].attacker.numAggressors = aggressors;
    slots[3].attacker.numBanks = banks;

    System sys(cfg, slots);
    RunResult r = sys.run(insts, insts * 150);

    double benign_ipc = 0;
    for (int i = 0; i < 3; ++i)
        benign_ipc += r.cores[i].ipc;

    const BreakHammer *bh = sys.breakHammer();
    std::printf("%9u %6u %12llu %10.3f %10.2f %8u %12llu\n", aggressors,
                banks,
                static_cast<unsigned long long>(r.preventiveActions),
                benign_ipc, bh->score(3), bh->quota(3),
                static_cast<unsigned long long>(r.quotaRejections));
}

} // namespace

int
main()
{
    std::printf("Attack aggressiveness study (Graphene+BreakHammer, "
                "N_RH=512)\n\n");
    std::printf("%9s %6s %12s %10s %10s %8s %12s\n", "rows/bank", "banks",
                "prev.actions", "benignIPC", "atk score", "quota",
                "quota rejs");
    for (unsigned aggressors : {2u, 4u, 8u})
        for (unsigned banks : {2u, 8u, 32u})
            runCase(aggressors, banks);

    std::printf("\nReading the table: wider/denser hammering triggers more "
                "preventive actions, drives the attacker's\nRowHammer-"
                "preventive score up, and BreakHammer answers by cutting "
                "its MSHR quota (quota rejections).\n");
    return 0;
}
