/**
 * @file
 * Mitigation tuning: compare all eight RowHammer mitigation mechanisms at
 * two RowHammer thresholds, with and without BreakHammer, on one attack
 * mix — the summary view a system architect choosing a mechanism would
 * want.
 *
 * Demonstrates: the mitigation factory, the experiment runner, and the
 * paper's headline metrics side by side (performance, unfairness, energy,
 * preventive actions).
 */
#include <cstdio>

#include "sim/experiment.h"

int
main()
{
    using namespace bh;

    MixSpec mix = makeMix("HHMA", 0);
    std::printf("Mechanism comparison on mix %s\n\n", mix.name.c_str());

    for (unsigned n_rh : {1024u, 256u}) {
        std::printf("--- N_RH = %u ---\n", n_rh);
        std::printf("%-12s %5s %8s %8s %10s %12s %8s\n", "mechanism", "BH",
                    "WS", "maxSD", "energy(uJ)", "prev.actions",
                    "suspects");
        for (MitigationType mech : pairedMitigations()) {
            for (bool bh_on : {false, true}) {
                ExperimentConfig cfg;
                cfg.mix = mix;
                cfg.mechanism = mech;
                cfg.nRh = n_rh;
                cfg.breakHammer = bh_on;
                ExperimentResult r = runExperiment(cfg);
                std::printf("%-12s %5s %8.3f %8.2f %10.1f %12llu %8llu\n",
                            mitigationName(mech), bh_on ? "on" : "off",
                            r.weightedSpeedup, r.maxSlowdown,
                            r.energyNj * 1e-3,
                            static_cast<unsigned long long>(
                                r.preventiveActions),
                            static_cast<unsigned long long>(
                                r.raw.suspectMarks));
            }
        }
        std::printf("\n");
    }
    std::printf("WS = weighted speedup of the three benign apps; maxSD = "
                "max slowdown (unfairness).\n");
    return 0;
}
