/**
 * @file
 * Mitigation tuning: compare all eight RowHammer mitigation mechanisms at
 * two RowHammer thresholds, with and without BreakHammer, on one attack
 * mix — the summary view a system architect choosing a mechanism would
 * want.
 *
 * Demonstrates: declaring a whole experiment grid up front, running it
 * through the parallel ExperimentScheduler with a streaming progress
 * callback, and exporting every point as JSON via a ResultLog.
 */
#include <cstdio>

#include "sim/scheduler.h"
#include "stats/result_log.h"

int
main(int argc, char **argv)
{
    using namespace bh;

    MixSpec mix = makeMix("HHMA", 0);
    std::printf("Mechanism comparison on mix %s\n\n", mix.name.c_str());

    const unsigned nrh_points[] = {1024u, 256u};

    // Declare the full (mechanism x N_RH x BH) grid up front...
    std::vector<ExperimentConfig> grid;
    for (unsigned n_rh : nrh_points) {
        for (MitigationType mech : pairedMitigations()) {
            for (bool bh_on : {false, true}) {
                ExperimentConfig cfg;
                cfg.mix = mix;
                cfg.mechanism = mech;
                cfg.nRh = n_rh;
                cfg.breakHammer = bh_on;
                grid.push_back(cfg);
            }
        }
    }

    // ...and run it in parallel. The streaming callback fires as points
    // complete (any order); the result vector is in grid order and
    // identical no matter how many threads ran.
    ResultLog log;
    SchedulerOptions options;
    options.log = &log;
    options.onResult = [&](std::size_t index, const ExperimentConfig &,
                           const ExperimentResult &) {
        std::fprintf(stderr, "  [%zu/%zu done]\r", log.size(),
                     grid.size());
        (void)index;
    };
    ExperimentScheduler scheduler(options);
    std::vector<ExperimentResult> results = scheduler.run(grid);
    std::fprintf(stderr, "\n");

    std::size_t i = 0;
    for (unsigned n_rh : nrh_points) {
        std::printf("--- N_RH = %u ---\n", n_rh);
        std::printf("%-12s %5s %8s %8s %10s %12s %8s\n", "mechanism", "BH",
                    "WS", "maxSD", "energy(uJ)", "prev.actions",
                    "suspects");
        for (MitigationType mech : pairedMitigations()) {
            for (bool bh_on : {false, true}) {
                const ExperimentResult &r = results[i++];
                std::printf("%-12s %5s %8.3f %8.2f %10.1f %12llu %8llu\n",
                            mitigationName(mech), bh_on ? "on" : "off",
                            r.weightedSpeedup, r.maxSlowdown,
                            r.energyNj * 1e-3,
                            static_cast<unsigned long long>(
                                r.preventiveActions),
                            static_cast<unsigned long long>(
                                r.raw.suspectMarks));
            }
        }
        std::printf("\n");
    }
    std::printf("WS = weighted speedup of the three benign apps; maxSD = "
                "max slowdown (unfairness).\n");

    if (argc > 1) {
        log.writeFile(argv[1]);
        std::printf("wrote %s (%zu records)\n", argv[1], log.size());
    }
    return 0;
}
