/**
 * @file
 * Quickstart: build a four-core system under RowHammer attack, pair the
 * Graphene mitigation with BreakHammer, and compare against the unpaired
 * baseline.
 *
 * Demonstrates the core public API: mixes, experiment configs, the
 * parallel ExperimentScheduler (both runs execute concurrently), and the
 * metrics the paper reports (weighted speedup of benign applications,
 * unfairness, preventive-action counts).
 */
#include <cstdio>

#include "sim/scheduler.h"

int
main()
{
    using namespace bh;

    // An HHMA mix: three benign apps (two high-, one medium-intensity)
    // plus one core mounting a many-sided RowHammer access pattern.
    MixSpec mix = makeMix("HHMA", 0);
    std::printf("mix %s:", mix.name.c_str());
    for (const auto &slot : mix.slots)
        std::printf(" %s", slot.kind == WorkloadSlot::Kind::kAttacker
                               ? "ATTACKER"
                               : slot.appName.c_str());
    std::printf("\n\n");

    const unsigned n_rh = 1024;

    ExperimentConfig base;
    base.mix = mix;
    base.mechanism = MitigationType::kGraphene;
    base.nRh = n_rh;
    base.breakHammer = false;

    ExperimentConfig paired = base;
    paired.breakHammer = true;

    // Both points are independent simulations; the scheduler runs them on
    // parallel workers and returns results in grid order.
    ExperimentScheduler scheduler({.threads = 2});
    std::vector<ExperimentResult> results = scheduler.run({base, paired});
    const ExperimentResult &baseline = results[0];
    const ExperimentResult &with_bh = results[1];

    std::printf("%-22s %12s %12s\n", "metric", "Graphene", "Graphene+BH");
    std::printf("%-22s %12.3f %12.3f\n", "weighted speedup (benign)",
                baseline.weightedSpeedup, with_bh.weightedSpeedup);
    std::printf("%-22s %12.3f %12.3f\n", "max slowdown (benign)",
                baseline.maxSlowdown, with_bh.maxSlowdown);
    std::printf("%-22s %12llu %12llu\n", "preventive actions",
                static_cast<unsigned long long>(baseline.preventiveActions),
                static_cast<unsigned long long>(with_bh.preventiveActions));
    std::printf("%-22s %12.2f %12.2f\n", "DRAM energy (uJ)",
                baseline.energyNj * 1e-3, with_bh.energyNj * 1e-3);
    std::printf("%-22s %12llu %12llu\n", "suspect marks",
                static_cast<unsigned long long>(baseline.raw.suspectMarks),
                static_cast<unsigned long long>(with_bh.raw.suspectMarks));

    double speedup =
        with_bh.weightedSpeedup / baseline.weightedSpeedup - 1.0;
    std::printf("\nBreakHammer improves benign weighted speedup by %.1f%%\n",
                speedup * 100.0);
    return 0;
}
